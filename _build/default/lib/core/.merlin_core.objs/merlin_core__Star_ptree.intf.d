lib/core/star_ptree.mli: Buffer_lib Build Curve Merlin_curves Merlin_geometry Merlin_net Merlin_tech Point Sink Tech
