open Merlin_curves

type t =
  | Best_req
  | Max_req_under_area of float
  | Min_area_over_req of float

let choose obj curve =
  match obj with
  | Best_req -> Curve.best_req curve
  | Max_req_under_area budget -> Curve.best_under_area curve ~area:budget
  | Min_area_over_req floor -> Curve.best_min_area curve ~req:floor

let pp ppf = function
  | Best_req -> Format.fprintf ppf "best-req"
  | Max_req_under_area a -> Format.fprintf ppf "max-req(area<=%.1f)" a
  | Min_area_over_req r -> Format.fprintf ppf "min-area(req>=%.1f)" r
