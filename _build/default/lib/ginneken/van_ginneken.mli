(** Buffer insertion on a fixed routing tree — van Ginneken's algorithm
    [Gi90], the buffering phase of the paper's Setup/Flow II.

    A single bottom-up pass over the RC tree propagates non-inferior
    (required time, load) curves, considering a buffer from the library at
    every internal node; the total-buffer-area dimension is carried along
    exactly as in the rest of this repository, so the result is a full
    three-dimensional trade-off curve rather than the classical single
    optimum.  Long edges can be subdivided first ({!Merlin_rtree.Rtree.refine})
    to create interior insertion sites. *)

open Merlin_tech
open Merlin_net
open Merlin_rtree
open Merlin_curves

(** [curve ~tech ~buffers ?trials ?max_curve ?refine_seg tree] is the
    curve of buffered variants of [tree], measured at the tree's
    attachment point.  [refine_seg] (grid units) subdivides longer edges to
    create insertion sites; [None] inserts only at existing internal
    nodes.  [trials] bounds the buffers tried per site (evenly spaced over
    the library; default: the whole library). *)
val curve :
  tech:Tech.t ->
  buffers:Buffer_lib.t ->
  ?trials:int ->
  ?max_curve:int ->
  ?refine_seg:int ->
  Rtree.t ->
  Merlin_core.Build.t Curve.t

(** [insert ~tech ~buffers ~driver ?refine_seg net tree] buffers [tree]
    (which must be rooted at the net source) to maximise the required time
    at the driver input. *)
val insert :
  tech:Tech.t ->
  buffers:Buffer_lib.t ->
  ?trials:int ->
  ?max_curve:int ->
  ?refine_seg:int ->
  Net.t ->
  Rtree.t ->
  Rtree.t
