lib/ginneken/van_ginneken.mli: Buffer_lib Curve Merlin_core Merlin_curves Merlin_net Merlin_rtree Merlin_tech Net Rtree Tech
