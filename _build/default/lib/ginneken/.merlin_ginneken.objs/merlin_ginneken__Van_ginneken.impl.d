lib/ginneken/van_ginneken.ml: Array Build Curve Delay_model List Merlin_core Merlin_curves Merlin_geometry Merlin_net Merlin_rtree Merlin_tech Net Point Rtree Solution
