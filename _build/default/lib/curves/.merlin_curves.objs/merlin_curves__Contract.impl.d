lib/curves/contract.ml: List Printf Solution Sys
