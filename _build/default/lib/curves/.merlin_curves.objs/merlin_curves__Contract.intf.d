lib/curves/contract.mli: Solution
