lib/curves/curve.ml: Array Contract Format List Solution
