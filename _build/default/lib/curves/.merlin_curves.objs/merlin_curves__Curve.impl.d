lib/curves/curve.ml: Array Format List Solution
