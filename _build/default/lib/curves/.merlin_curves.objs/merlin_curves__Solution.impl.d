lib/curves/solution.ml: Float Format
