lib/curves/curve.mli: Format Solution
