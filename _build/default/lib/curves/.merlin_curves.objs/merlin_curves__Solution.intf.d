lib/curves/solution.mli: Format
