(** Non-inferior three-dimensional solution curves.

    A curve holds only mutually non-inferior solutions (Definition 6) and
    keeps them in the deterministic {!Solution.compare_key} order.  All
    dynamic programs in the repository combine, extend and prune these
    curves; Lemma 9 (pruning loses no non-inferior solution) is enforced
    here and property-tested in [test/test_curves.ml]. *)

type 'a t

val empty : 'a t

val is_empty : 'a t -> bool

val size : 'a t -> int

(** Solutions in {!Solution.compare_key} order. *)
val to_list : 'a t -> 'a Solution.t list

(** [add curve s] inserts [s] unless an existing solution dominates it and
    removes every solution [s] dominates. *)
val add : 'a t -> 'a Solution.t -> 'a t

val of_list : 'a Solution.t list -> 'a t

(** [union a b] is the pruned merge of both curves. *)
val union : 'a t -> 'a t -> 'a t

val map_data : ('a -> 'b) -> 'a t -> 'b t

(** [map_solutions f c] rebuilds the curve from [f] applied to each
    solution, re-pruning (used to push a solution through a wire or a
    buffer, which changes all three coordinates). *)
val map_solutions : ('a Solution.t -> 'b Solution.t) -> 'a t -> 'b t

val fold : ('acc -> 'a Solution.t -> 'acc) -> 'acc -> 'a t -> 'acc

val iter : ('a Solution.t -> unit) -> 'a t -> unit

(** Solution with the largest required time, ties broken by smaller load
    then area (the curve's first element). *)
val best_req : 'a t -> 'a Solution.t option

(** [best_under_area curve ~area] is the max-required-time solution with
    area at most [area] (problem variant I). *)
val best_under_area : 'a t -> area:float -> 'a Solution.t option

(** [best_min_area curve ~req] is the min-area solution with required time
    at least [req] (problem variant II). *)
val best_min_area : 'a t -> req:float -> 'a Solution.t option

(** [cap ~max_size curve] reduces the curve to at most [max_size] points
    by keeping an even spread along the required-time axis (always keeping
    both extremes).  This is the epsilon-pruning knob documented in
    DESIGN.md §5; [max_size >= 2]. *)
val cap : max_size:int -> 'a t -> 'a t

(** [quantise_load ~grid curve] rounds every load {e up} to a multiple of
    [grid] and re-prunes — the "capacitances mapped to polynomially bounded
    integers" proviso of Lemmas 1 and 10.  Rounding up is pessimistic, so
    any solution kept remains electrically valid. *)
val quantise_load : grid:float -> 'a t -> 'a t

(** [quantise ~req_grid ~load_grid ~area_grid curve] buckets all three
    dimensions pessimistically (required time down, load and area up) and
    re-prunes.  With all three grids set, the frontier size is bounded by
    the number of distinct (load, area) buckets, which is what makes the
    paper's dynamic programs pseudo-polynomial without the instability of
    a hard count cap.  A grid of 0 leaves that dimension untouched. *)
val quantise :
  req_grid:float -> load_grid:float -> area_grid:float -> 'a t -> 'a t

(** [is_frontier c] checks the internal invariant: no element dominates
    another.  Exposed for tests. *)
val is_frontier : 'a t -> bool

val pp : Format.formatter -> 'a t -> unit
