(** Plain-text (de)serialisation of nets, one item per line:

    {v
    net <name>
    source <x> <y>
    driver <d0> <r_drive> <k_slew> <s0>
    sink <id> <x> <y> <cap> <req>
    ...
    v} *)

val to_string : Net.t -> string

(** Raises [Failure] with a line-numbered message on malformed input. *)
val of_string : string -> Net.t

val save : string -> Net.t -> unit

val load : string -> Net.t
