open Merlin_geometry
open Merlin_tech

let to_string (net : Net.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "net %s\n" net.Net.name);
  Buffer.add_string buf
    (Printf.sprintf "source %d %d\n" net.Net.source.Point.x
       net.Net.source.Point.y);
  let d = net.Net.driver in
  Buffer.add_string buf
    (Printf.sprintf "driver %g %g %g %g\n" d.Delay_model.d0
       d.Delay_model.r_drive d.Delay_model.k_slew d.Delay_model.s0);
  Array.iter
    (fun s ->
       Buffer.add_string buf
         (Printf.sprintf "sink %d %d %d %g %g\n" s.Sink.id s.Sink.pt.Point.x
            s.Sink.pt.Point.y s.Sink.cap s.Sink.req))
    net.Net.sinks;
  Buffer.contents buf

let fail lineno msg = failwith (Printf.sprintf "Net_io.of_string: line %d: %s" lineno msg)

let of_string text =
  let lines = String.split_on_char '\n' text in
  let name = ref None and source = ref None and driver = ref None in
  let sinks = ref [] in
  let parse lineno line =
    match String.split_on_char ' ' (String.trim line) with
    | [ "" ] -> ()
    | [ "net"; n ] -> name := Some n
    | [ "source"; x; y ] ->
      (try source := Some (Point.make (int_of_string x) (int_of_string y))
       with Failure _ -> fail lineno "bad source coordinates")
    | [ "driver"; d0; r; k; s0 ] ->
      (try
         driver :=
           Some
             (Delay_model.make ~d0:(float_of_string d0)
                ~r_drive:(float_of_string r) ~k_slew:(float_of_string k)
                ~s0:(float_of_string s0))
       with Failure _ -> fail lineno "bad driver parameters")
    | [ "sink"; id; x; y; cap; req ] ->
      (try
         let s =
           Sink.make ~id:(int_of_string id)
             ~pt:(Point.make (int_of_string x) (int_of_string y))
             ~cap:(float_of_string cap) ~req:(float_of_string req)
         in
         sinks := s :: !sinks
       with Failure _ -> fail lineno "bad sink fields")
    | _ -> fail lineno (Printf.sprintf "unrecognised line %S" line)
  in
  List.iteri (fun i line -> parse (i + 1) line) lines;
  match (!name, !source, !driver) with
  | Some name, Some source, Some driver ->
    Net.make ~name ~source ~driver (List.rev !sinks)
  | None, _, _ -> failwith "Net_io.of_string: missing 'net' line"
  | _, None, _ -> failwith "Net_io.of_string: missing 'source' line"
  | _, _, None -> failwith "Net_io.of_string: missing 'driver' line"

let save path net =
  let oc = open_out path in
  output_string oc (to_string net);
  close_out oc

let load path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  of_string text
