open Merlin_geometry
open Merlin_tech

(* Solve (r*c/2) * L^2 * ps_per_ohm_ff = target_delay for L. *)
let box_side tech ~target_delay =
  let rc =
    tech.Tech.unit_wire_res *. tech.Tech.unit_wire_cap /. 2.0
    *. Tech.ps_per_ohm_ff
  in
  int_of_float (sqrt (target_delay /. rc))

let uniform st lo hi = lo +. (Random.State.float st (hi -. lo))

let random_net ~seed ~name ~n ?(driver = Net.default_driver)
    ?(wire_gate_ratio = 0.25) tech =
  if n < 1 then invalid_arg "Net_gen.random_net: n < 1";
  let st = Random.State.make [| seed; n; 0x4d45524c (* "MERL" *) |] in
  let gate_delay = Delay_model.delay driver ~load:30.0 in
  let side = box_side tech ~target_delay:(wire_gate_ratio *. gate_delay) in
  let point () =
    Point.make (Random.State.int st (side + 1)) (Random.State.int st (side + 1))
  in
  let req_window = 4.0 *. gate_delay in
  let base_req = 10.0 *. gate_delay in
  (* Gate input pins of a mapped 0.35um netlist: tens of fF.  Heavy sink
     loads are what make the logic-domain fanout problem (Flow I's LTTREE
     phase) nontrivial, as in the paper's mapped benchmarks. *)
  let sink id =
    Sink.make ~id ~pt:(point ())
      ~cap:(uniform st 15.0 50.0)
      ~req:(base_req +. uniform st 0.0 req_window)
  in
  let sinks = List.init n sink in
  let source = Point.make 0 (Random.State.int st (side + 1)) in
  Net.make ~name ~source ~driver sinks

let table1_specs =
  [ ("C432", "net1", 16); ("C432", "net2", 16); ("C432", "net3", 10);
    ("C1355", "net4", 9); ("C1355", "net5", 9); ("C1355", "net6", 13);
    ("C3540", "net7", 12); ("C3540", "net8", 35); ("C3540", "net9", 73);
    ("C5315", "net10", 49); ("C5315", "net11", 21); ("C5315", "net12", 50);
    ("C6288", "net13", 16); ("C6288", "net14", 20); ("C6288", "net15", 60);
    ("C7552", "net16", 12); ("C7552", "net17", 16); ("C7552", "net18", 23) ]

let table1_nets tech =
  let instantiate (circuit, net_name, n) =
    let seed = Hashtbl.hash (circuit, net_name) in
    (circuit, net_name, random_net ~seed ~name:net_name ~n tech)
  in
  List.map instantiate table1_specs
