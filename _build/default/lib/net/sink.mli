(** A sink node of a net: position, capacitive load and required time
    (paper Section III.1, item 2). *)

open Merlin_geometry
open Merlin_tech

type t = {
  id : int;           (** stable identifier, unique within a net *)
  pt : Point.t;
  cap : float;        (** capacitive load, fF *)
  req : float;        (** required time, ps *)
}

val make : id:int -> pt:Point.t -> cap:float -> req:float -> t

val equal : t -> t -> bool

(** [of_buffer ~id ~pt ~req b] is the sink presented by the input pin of
    buffer [b] placed at [pt]. *)
val of_buffer : id:int -> pt:Point.t -> req:float -> Buffer_lib.buffer -> t

val pp : Format.formatter -> t -> unit
