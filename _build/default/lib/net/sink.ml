open Merlin_geometry
open Merlin_tech

type t = { id : int; pt : Point.t; cap : float; req : float }

let make ~id ~pt ~cap ~req = { id; pt; cap; req }

let equal a b =
  a.id = b.id && Point.equal a.pt b.pt && a.cap = b.cap && a.req = b.req

let of_buffer ~id ~pt ~req b =
  { id; pt; cap = b.Buffer_lib.input_cap; req }

let pp ppf s =
  Format.fprintf ppf "s%d@%a cap=%.2f req=%.1f" s.id Point.pp s.pt s.cap s.req
