(** A net: a driver (source) and a set of sinks to be connected by a
    buffered routing tree (paper Section III.1). *)

open Merlin_geometry
open Merlin_tech

type t = {
  name : string;
  source : Point.t;            (** position of the driver output pin *)
  driver : Delay_model.t;      (** 4-parameter model of the driving gate *)
  sinks : Sink.t array;        (** indexed by sink id: [sinks.(i).id = i] *)
}

(** [make ~name ~source ~driver sinks] validates that sink ids are exactly
    [0 .. n-1] in order.  Raises [Invalid_argument] otherwise or if the net
    has no sinks. *)
val make :
  name:string -> source:Point.t -> driver:Delay_model.t -> Sink.t list -> t

val n_sinks : t -> int

val sink : t -> int -> Sink.t

(** All terminal positions: source plus sinks. *)
val terminals : t -> Point.t list

(** Smallest box containing all terminals. *)
val bounding_box : t -> Rect.t

(** Sum of the sink capacitive loads, fF. *)
val total_sink_cap : t -> float

(** A default driver model: a mid-strength gate of the synthetic library. *)
val default_driver : Delay_model.t

val pp : Format.formatter -> t -> unit
