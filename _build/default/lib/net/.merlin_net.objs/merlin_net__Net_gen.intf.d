lib/net/net_gen.mli: Delay_model Merlin_tech Net Tech
