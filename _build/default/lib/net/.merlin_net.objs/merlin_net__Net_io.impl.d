lib/net/net_io.ml: Array Buffer Delay_model List Merlin_geometry Merlin_tech Net Point Printf Sink String
