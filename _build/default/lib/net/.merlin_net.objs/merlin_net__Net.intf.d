lib/net/net.mli: Delay_model Format Merlin_geometry Merlin_tech Point Rect Sink
