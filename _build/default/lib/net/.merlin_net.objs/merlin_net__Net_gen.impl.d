lib/net/net_gen.ml: Delay_model Hashtbl List Merlin_geometry Merlin_tech Net Point Random Sink Tech
