lib/net/net_io.mli: Net
