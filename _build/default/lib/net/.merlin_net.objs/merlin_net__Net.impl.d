lib/net/net.ml: Array Delay_model Format Merlin_geometry Merlin_tech Point Printf Rect Sink
