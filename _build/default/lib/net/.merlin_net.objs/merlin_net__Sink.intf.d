lib/net/sink.mli: Buffer_lib Format Merlin_geometry Merlin_tech Point
