lib/net/sink.ml: Buffer_lib Format Merlin_geometry Merlin_tech Point
