(** Random net generation following the paper's experimental recipe
    (Section IV): sinks of a mapped net have known loads and required
    times; their locations are drawn uniformly at random inside a bounding
    box sized so that the interconnect delay is approximately equal to a
    gate delay.

    All generators are deterministic in their [seed]. *)

open Merlin_tech

(** [box_side tech ~target_delay] is the side (grid units) of a square box
    whose corner-to-corner Elmore wire delay is approximately
    [target_delay] ps. *)
val box_side : Tech.t -> target_delay:float -> int

(** [random_net ~seed ~name ~n tech] builds an [n]-sink net:
    - box sized so the interconnect delay of the net is about one gate
      delay: a routed tree strings several box-sides of wire in series
      and wire delay is quadratic in length, so the corner-to-corner
      Elmore target is [wire_gate_ratio] (default 0.25) of a gate delay,
    - sink loads uniform in [15, 50] fF (mapped-netlist input pins),
    - required times spread over a window of a few gate delays,
    - driver placed on the box edge. *)
val random_net :
  seed:int ->
  name:string ->
  n:int ->
  ?driver:Delay_model.t ->
  ?wire_gate_ratio:float ->
  Tech.t ->
  Net.t

(** The 18 Table-1 nets: (circuit, net name, sink count) exactly as the
    paper lists them. *)
val table1_specs : (string * string * int) list

(** [table1_nets tech] instantiates the 18 nets, seeded by their names. *)
val table1_nets : Tech.t -> (string * string * Net.t) list
